#include "core/worker.hh"

#include <algorithm>

#include "common/log.hh"
#include "fault/failure.hh"
#include "sim/fiber.hh"
#include "sim/system.hh"

namespace bigtiny::rt
{

using sim::Core;
using sim::TimeCat;
using L = TaskLayout;

namespace
{
/** Instruction overhead charged for task dispatch bookkeeping. */
constexpr uint64_t dispatchCycles = 4;
constexpr uint64_t victimSelectCycles = 4;

/**
 * Minimum fiber-stack headroom required to start another task body.
 * Guest tasks nest (execTask -> body -> wait -> execTask ...), so a
 * corrupted task frame that re-spawns the same range forever would
 * otherwise run the fiber stack off its 256 KiB allocation and kill
 * the host with SIGSEGV. 64 KiB leaves room for one more nest plus
 * the failure-unwind path even under sanitizer frame bloat.
 */
constexpr size_t minStackHeadroom = 64 * 1024;

/**
 * Scoped coherence-checker site label: violations reported while the
 * scope is live carry @p site for the worker's core; the previous
 * label is restored on exit (labels nest across execTask recursion).
 */
class SiteScope
{
  public:
    SiteScope(check::CoherenceChecker *chk, CoreId c, const char *site)
        : chk(chk), c(c)
    {
        if (chk)
            prev = chk->setSite(c, site);
    }
    ~SiteScope()
    {
        if (chk)
            chk->setSite(c, prev);
    }
    SiteScope(const SiteScope &) = delete;
    SiteScope &operator=(const SiteScope &) = delete;

  private:
    check::CoherenceChecker *chk;
    CoreId c;
    const char *prev = nullptr;
};

/**
 * Scoped racy-read annotation (CoherenceChecker::setRacy): loads in
 * the scope are deliberately racy heuristics, exempt from the
 * checker's stale-read validation.
 */
class RacyScope
{
  public:
    RacyScope(check::CoherenceChecker *chk, CoreId c) : chk(chk), c(c)
    {
        if (chk)
            prev = chk->setRacy(c, true);
    }
    ~RacyScope()
    {
        if (chk)
            chk->setRacy(c, prev);
    }
    RacyScope(const RacyScope &) = delete;
    RacyScope &operator=(const RacyScope &) = delete;

  private:
    check::CoherenceChecker *chk;
    CoreId c;
    bool prev = false;
};

/**
 * Scoped trace span on the worker's core track: records the begin
 * cycle at construction and emits one complete event covering the
 * region at destruction. Emitting from the destructor means spans
 * close correctly even when a FiberUnwind exception tears the guest
 * stack down mid-region.
 */
class TraceSpan
{
  public:
    TraceSpan(sim::Core &core, uint32_t cat, const char *name,
              const char *k0 = nullptr, uint64_t v0 = 0,
              const char *k1 = nullptr, uint64_t v1 = 0)
        : core(core), tr(core.system().tracer()), cat(cat), name(name),
          k0(k0), k1(k1), v0(v0), v1(v1), t0(core.now())
    {}
    ~TraceSpan()
    {
        if (BT_TRACE_ON(tr, cat))
            tr->complete(cat, core.id(), t0, core.now(), name, k0, v0,
                         k1, v1);
    }
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Update the second argument (e.g. a steal's outcome). */
    void setArg1(uint64_t v) { v1 = v; }

  private:
    sim::Core &core;
    trace::Tracer *tr;
    uint32_t cat;
    const char *name;
    const char *k0;
    const char *k1;
    uint64_t v0;
    uint64_t v1;
    Cycle t0;
};

/**
 * Sample the deque-depth counter for @p owner's deque on its track.
 * Reads the cursor words functionally (zero simulated time), so the
 * sample cannot perturb the model.
 */
void
traceDequeDepth(Runtime &rt, int owner, Cycle at)
{
    trace::Tracer *tr = rt.sys.tracer();
    if (!BT_TRACE_ON(tr, trace::CatTask))
        return;
    TaskDeque &q = rt.deque(owner);
    auto head = rt.sys.mem().funcRead<uint64_t>(q.headAddr());
    auto tail = rt.sys.mem().funcRead<uint64_t>(q.tailAddr());
    tr->counter(trace::CatTask, owner, at, "deque-depth", tail - head);
}
} // namespace

Worker::Worker(Runtime &rt, Core &core, int wid)
    : core(core), rt(rt), wid(wid)
{}

void
Worker::accrue()
{
    uint64_t now = core.instCount();
    rt.profiler.accrue(curProf, now - lastInst);
    lastInst = now;
}

// ---------------------------------------------------------------------
// Task creation and bookkeeping
// ---------------------------------------------------------------------

Addr
Worker::newTask(TaskFn fn, std::initializer_list<uint64_t> args)
{
    panic_if(args.size() > L::maxArgs, "too many task arguments");
    accrue();
    SiteScope site(rt.sys.mem().checker(), wid, "Worker::newTask");
    Addr t = rt.allocTaskFrame();
    DagProfiler::Idx prof = rt.profiler.newTask(curProf);
    // Architectural initialization: these stores flow through the
    // simulated caches like any user data (fresh frames are zero, so
    // rc/has_stolen_child need no explicit store).
    rt.taskFns.insert(reinterpret_cast<uint64_t>(fn));
    core.st<uint64_t>(t + L::fnOff, reinterpret_cast<uint64_t>(fn));
    core.st<uint64_t>(t + L::parentOff, curTask);
    int i = 0;
    for (uint64_t v : args)
        core.st<uint64_t>(t + L::argsOff + 8 * i++, v);
    core.work(dispatchCycles);
    // Profiler index is metadata, not architectural state.
    rt.sys.mem().funcWrite<uint64_t>(t + L::profOff,
                                     static_cast<uint64_t>(prof + 1));
    if (auto *lt = rt.lifecycle(); BT_LIFE_ON(lt))
        lt->onCreate(t, wid, core.now());
    return t;
}

void
Worker::registerBody(const void *p)
{
    rt.liveBodies.push_back(reinterpret_cast<uint64_t>(p));
}

void
Worker::unregisterBody(const void *p)
{
    auto bits = reinterpret_cast<uint64_t>(p);
    // Registrations nest (recursive patterns across workers); remove
    // the most recent matching entry. The list stays tiny — one entry
    // per live parallel scope.
    auto it = std::find(rt.liveBodies.rbegin(), rt.liveBodies.rend(),
                        bits);
    if (it != rt.liveBodies.rend())
        rt.liveBodies.erase(std::next(it).base());
}

const void *
Worker::checkBody(Addr task, uint64_t bits)
{
    if (std::find(rt.liveBodies.begin(), rt.liveBodies.end(), bits) ==
        rt.liveBodies.end())
        core.system().raiseFailure(
            fault::Verdict::DequeCorruption,
            fault::format("task %#llx closure pointer %#llx is not a "
                          "live parallel body (worker %d at cycle "
                          "%llu) — stale or corrupted frame read",
                          (unsigned long long)task,
                          (unsigned long long)bits, wid,
                          (unsigned long long)core.now()));
    return reinterpret_cast<const void *>(bits);
}

uint64_t
Worker::arg(Addr task, int i)
{
    return core.ld<uint64_t>(task + L::argsOff + 8 * i);
}

void
Worker::setArg(Addr task, int i, uint64_t v)
{
    core.st<uint64_t>(task + L::argsOff + 8 * i, v);
}

void
Worker::setRefCount(int64_t n)
{
    panic_if(!curTask, "setRefCount outside a task");
    core.st<uint64_t>(curTask + L::rcOff, static_cast<uint64_t>(n));
}

void
Worker::execTask(Addr t)
{
    // Depth guard: unbounded guest recursion (typically a stale or
    // corrupted task frame re-spawning its own range) must surface as
    // a structured failure, not a host stack overflow.
    if (sim::Fiber::current()->stackHeadroom() < minStackHeadroom)
        core.system().raiseFailure(
            fault::Verdict::GuestError,
            fault::format("fiber stack nearly exhausted executing task "
                          "%#llx (worker %d at cycle %llu) — runaway "
                          "task recursion",
                          (unsigned long long)t, wid,
                          (unsigned long long)core.now()));
    accrue();
    Addr saved_task = curTask;
    DagProfiler::Idx saved_prof = curProf;
    curTask = t;
    curProf = static_cast<DagProfiler::Idx>(
                  rt.sys.mem().funcRead<uint64_t>(t + L::profOff)) - 1;
    lastInst = core.instCount();

    // Runtime invariant: every task executes exactly once (host-side
    // bookkeeping; a violation means the deque or join protocol broke).
    if (!rt.executedTasks.insert(t))
        core.system().raiseFailure(
            fault::Verdict::TaskProtocol,
            fault::format("task %#llx executed twice (worker %d at "
                          "cycle %llu)",
                          (unsigned long long)t, wid,
                          (unsigned long long)core.now()));
    TraceSpan span(core, trace::CatTask, "task", "frame", t);
    if (BT_TRACE_ON(rt.sys.tracer(), trace::CatFlow))
        rt.sys.tracer()->flow(trace::CatFlow, core.id(), core.now(),
                              'f', "task-flow", t);
    if (auto *lt = rt.lifecycle(); BT_LIFE_ON(lt))
        lt->onStart(t, wid, core.now());
    uint64_t fn_bits = core.ld<uint64_t>(t + L::fnOff);
    core.work(dispatchCycles);
    if (!fn_bits)
        core.system().raiseFailure(
            fault::Verdict::DequeCorruption,
            fault::format("task %#llx has no body (worker %d at cycle "
                          "%llu) — corrupted deque entry or mailbox",
                          (unsigned long long)t, wid,
                          (unsigned long long)core.now()));
    // Stale or corrupted frame reads can return arbitrary bits here;
    // jumping through them is host UB. Every legitimate value was
    // recorded by newTask.
    if (!rt.taskFns.contains(fn_bits))
        core.system().raiseFailure(
            fault::Verdict::DequeCorruption,
            fault::format("task %#llx function pointer %#llx is not a "
                          "registered task function (worker %d at "
                          "cycle %llu) — stale or corrupted frame "
                          "read",
                          (unsigned long long)t,
                          (unsigned long long)fn_bits, wid,
                          (unsigned long long)core.now()));
    auto fn = reinterpret_cast<TaskFn>(fn_bits);
    {
        SiteScope site(rt.sys.mem().checker(), wid, "task body");
        fn(*this, t);
    }

    accrue();
    rt.profiler.onTaskDone(curProf);
    if (auto *lt = rt.lifecycle(); BT_LIFE_ON(lt))
        lt->onFinish(t, wid, core.now());
    ++stats.tasksExecuted;
    curTask = saved_task;
    curProf = saved_prof;
}

void
Worker::joinShared(Addr t)
{
    SiteScope site(rt.sys.mem().checker(), wid, "Worker::joinShared");
    ++stats.tasksJoined;
    Addr parent = core.ld<uint64_t>(t + L::parentOff);
    if (parent)
        core.amo(mem::AmoOp::Add, parent + L::rcOff,
                 static_cast<uint64_t>(-1), 8);
}

void
Worker::retire(Addr t)
{
    // After a task has executed and joined, nothing may read its
    // frame again (frames are not recycled inside a run; see task.hh).
    if (auto *chk = rt.sys.mem().checker())
        chk->frameFree(t);
}

void
Worker::joinDtsLocal(Addr t)
{
    // Figure 3(c) lines 17-20: AMO only if some child of the parent
    // was stolen; otherwise the parent runs on this very core and a
    // plain read-modify-write is safe.
    SiteScope site(rt.sys.mem().checker(), wid, "Worker::joinDtsLocal");
    ++stats.tasksJoined;
    Addr parent = core.ld<uint64_t>(t + L::parentOff);
    if (!parent)
        return;
    if (core.ld<uint64_t>(parent + L::stolenOff)) {
        core.amo(mem::AmoOp::Add, parent + L::rcOff,
                 static_cast<uint64_t>(-1), 8);
    } else {
        uint64_t rc = core.ld<uint64_t>(parent + L::rcOff);
        core.st<uint64_t>(parent + L::rcOff, rc - 1);
    }
}

int
Worker::chooseVictim()
{
    int n = rt.numWorkers();
    if (n < 2)
        return -1;
    // Victim selection is modeled at a constant cost regardless of
    // policy; the policy logic itself is host-side scheduling state.
    core.work(victimSelectCycles, TimeCat::Sync);
    return rt.stealPolicy().chooseVictim(rt, wid);
}

// ---------------------------------------------------------------------
// spawn (Figure 3, all variants)
// ---------------------------------------------------------------------

void
Worker::spawn(Addr t)
{
    SiteScope site(rt.sys.mem().checker(), wid, "Worker::spawn");
    ++stats.tasksSpawned;
    TaskDeque &q = rt.deque(wid);
    switch (rt.variant) {
      case SchedVariant::Baseline:
        q.lockAq(core);
        q.enq(core, t);
        q.lockRl(core);
        break;
      case SchedVariant::Hcc:
        q.lockAq(core);
        core.cacheInvalidate();
        q.enq(core, t);
        core.cacheFlush();
        q.lockRl(core);
        break;
      case SchedVariant::Dts:
        core.uliDisable();
        core.work(1, TimeCat::Sync);
        q.enq(core, t);
        core.uliEnable();
        core.work(1, TimeCat::Sync);
        break;
    }
    if (BT_TRACE_ON(rt.sys.tracer(), trace::CatTask))
        rt.sys.tracer()->instant(trace::CatTask, core.id(), core.now(),
                                 "spawn", "frame", t);
    if (BT_TRACE_ON(rt.sys.tracer(), trace::CatFlow))
        rt.sys.tracer()->flow(trace::CatFlow, core.id(), core.now(),
                              's', "task-flow", t);
    if (auto *lt = rt.lifecycle(); BT_LIFE_ON(lt))
        lt->onEnqueue(t, wid, core.now());
    traceDequeDepth(rt, wid, core.now());
}

void
Worker::spawnWithAffinity(Addr t, Addr data_addr)
{
    // The hint is pure scheduling metadata (no simulated work): map
    // the data address to the L2 bank that homes it, then to the
    // cluster holding that bank, and tell the steal policy that this
    // worker has work affine to that cluster.
    const auto &cfg = rt.cfg;
    int bank =
        static_cast<int>((data_addr >> lineShift) % cfg.numBanks());
    rt.stealPolicy().noteSpawnAffinity(rt, wid, cfg.clusterOfBank(bank));
    spawn(t);
}

// ---------------------------------------------------------------------
// wait (Figure 3, all variants)
// ---------------------------------------------------------------------

void
Worker::wait()
{
    panic_if(!curTask, "wait outside a task");
    SiteScope site(rt.sys.mem().checker(), wid, "Worker::wait");
    Addr p = curTask;
    accrue();
    // Scheduling-loop overhead is not the task's own work (Cilkview
    // measures the program, not the scheduler), so suspend accrual.
    DagProfiler::Idx saved = curProf;
    curProf = DagProfiler::none;
    switch (rt.variant) {
      case SchedVariant::Baseline:
        waitBaseline(p);
        break;
      case SchedVariant::Hcc:
        waitHcc(p);
        break;
      case SchedVariant::Dts:
        waitDts(p);
        break;
    }
    accrue();
    curProf = saved;
    rt.profiler.onWaitExit(curProf);
}

void
Worker::waitBaseline(Addr p)
{
    TaskDeque &q = rt.deque(wid);
    while (static_cast<int64_t>(core.ld<uint64_t>(p + L::rcOff)) > 0) {
        q.lockAq(core);
        Addr t = q.deqTail(core);
        q.lockRl(core);
        if (t) {
            traceDequeDepth(rt, wid, core.now());
            failStreak = 0;
            takenRemotely(t); // host bookkeeping only under MESI
            execTask(t);
            joinShared(t);
            retire(t);
        } else if (!stealOnce()) {
            idleBackoff();
        }
    }
}

void
Worker::waitHcc(Addr p)
{
    TaskDeque &q = rt.deque(wid);
    while (static_cast<int64_t>(core.amoLoad(p + L::rcOff, 8)) > 0) {
        q.lockAq(core);
        core.cacheInvalidate();
        Addr t = q.deqTail(core);
        core.cacheFlush();
        q.lockRl(core);
        if (t) {
            traceDequeDepth(rt, wid, core.now());
            failStreak = 0;
            bool remote = takenRemotely(t);
            execTask(t);
            if (remote)
                core.cacheFlush(); // publish before the remote join
            joinShared(t);
            retire(t);
        } else if (!stealOnce()) {
            idleBackoff();
        }
    }
    // Children may have run remotely; invalidate before the parent
    // resumes so it cannot read their values stale (Figure 3(b) l.40).
    core.cacheInvalidate();
}

void
Worker::waitDts(Addr p)
{
    TaskDeque &q = rt.deque(wid);
    auto rc = static_cast<int64_t>(core.ld<uint64_t>(p + L::rcOff));
    while (rc > 0) {
        core.uliDisable();
        core.work(1, TimeCat::Sync);
        Addr t = q.deqTail(core);
        core.uliEnable();
        core.work(1, TimeCat::Sync);
        if (t) {
            traceDequeDepth(rt, wid, core.now());
            failStreak = 0;
            execTask(t);
            joinDtsLocal(t);
            retire(t);
        } else if (!stealOnce()) {
            idleBackoff();
        }
        // Figure 3(c) lines 37-40: rc needs an AMO read only if a
        // child escaped to another core.
        if (core.ld<uint64_t>(p + L::stolenOff))
            rc = static_cast<int64_t>(core.amoLoad(p + L::rcOff, 8));
        else
            rc = static_cast<int64_t>(core.ld<uint64_t>(p + L::rcOff));
    }
    // Invalidate only if some child actually ran elsewhere (l.43-44).
    if (core.ld<uint64_t>(p + L::stolenOff))
        core.cacheInvalidate();
}

// ---------------------------------------------------------------------
// Stealing
// ---------------------------------------------------------------------

void
Worker::idleBackoff()
{
    // Exponential backoff on repeated failed steals: keeps idle
    // thieves from hammering victim deques (and, under DTS, from
    // interrupting busy victims at a harmful rate).
    Cycle b = rt.cfg.stealBackoff << std::min(failStreak, 3u);
    ++failStreak;
    core.work(b, TimeCat::Idle);
}

bool
Worker::stealOnce()
{
    SiteScope site(rt.sys.mem().checker(), wid, "Worker::stealOnce");
    ++stats.stealAttempts;
    int vid = chooseVictim();
    if (vid < 0) {
        ++stats.failedSteals;
        return false;
    }
    TraceSpan span(core, trace::CatSteal, "steal", "victim",
                   static_cast<uint64_t>(vid), "got", 0);
    switch (rt.variant) {
      case SchedVariant::Baseline: {
        TaskDeque &vq = rt.deque(vid);
        if (rt.stealPolicy().probeBeforeLock() && vq.empty(core))
            break;
        std::vector<Addr> extras;
        vq.lockAq(core);
        Addr t = vq.deqHead(core);
        if (t && rt.stealPolicy().stealHalf(rt, wid, vid))
            grabHalf(vq, &extras);
        vq.lockRl(core);
        if (!t)
            break;
        traceDequeDepth(rt, vid, core.now());
        ++stats.tasksStolen;
        failStreak = 0;
        span.setArg1(1);
        rt.stealPolicy().onStealOutcome(rt, wid, vid, true);
        noteStolen(t, extras, vid);
        if (!extras.empty())
            transferStolen(extras);
        execTask(t);
        joinShared(t);
        retire(t);
        return true;
      }
      case SchedVariant::Hcc: {
        // One elision decision per steal attempt covers both
        // invalidate points (they protect the same hand-off).
        bool elide = elideStealInv();
        TaskDeque &vq = rt.deque(vid);
        if (rt.stealPolicy().probeBeforeLock()) {
            // Synchronizing cursor reads (plain loads would be stale
            // until the victim's pre-unlock flush), lock-free so an
            // empty-looking deque costs no AMOs on the victim's lock
            // line. Still racy — a concurrent plain cursor store may
            // sit dirty in another thief's L1 — but a wrong answer
            // only costs a failed attempt, so the probe is annotated
            // out of the checker's DRF contract.
            RacyScope racy(rt.sys.mem().checker(), core.id());
            if (vq.emptySync(core))
                break;
        }
        std::vector<Addr> extras;
        vq.lockAq(core);
        if (!elide)
            core.cacheInvalidate();
        Addr t = vq.deqHead(core);
        if (t && rt.stealPolicy().stealHalf(rt, wid, vid))
            grabHalf(vq, &extras);
        core.cacheFlush();
        vq.lockRl(core);
        if (!t)
            break;
        traceDequeDepth(rt, vid, core.now());
        ++stats.tasksStolen;
        failStreak = 0;
        span.setArg1(1);
        rt.stealPolicy().onStealOutcome(rt, wid, vid, true);
        noteStolen(t, extras, vid);
        if (!extras.empty())
            transferStolen(extras);
        if (!elide)
            core.cacheInvalidate(); // see the victim's published values
        execTask(t);
        core.cacheFlush();          // publish ours before the join
        joinShared(t);
        retire(t);
        return true;
      }
      case SchedVariant::Dts: {
        auto resp = core.uliSendReqAndWait(vid);
        Addr t = 0;
        if (resp.ack && resp.payload)
            t = core.amoLoad(rt.mailbox(wid), 8, TimeCat::Sync);
        if (!t)
            break;
        ++stats.tasksStolen;
        failStreak = 0;
        span.setArg1(1);
        rt.stealPolicy().onStealOutcome(rt, wid, vid, true);
        noteStolen(t, {}, vid);
        core.cacheInvalidate();
        execTask(t);
        core.cacheFlush();
        joinShared(t); // stolen: always an AMO (Figure 3(c) l.33)
        retire(t);
        return true;
      }
    }
    rt.stealPolicy().onStealOutcome(rt, wid, vid, false);
    ++stats.failedSteals;
    return false;
}

void
Worker::grabHalf(TaskDeque &vq, std::vector<Addr> *out)
{
    // Steal-half (cross-cluster transfers only; see StealPolicy):
    // with the victim's lock held, take half of what remains beyond
    // the task already popped, so the expensive remote round trip is
    // amortized over a batch. The cursor reads are ordinary
    // architectural loads of the deque metadata.
    auto head = core.ld<uint64_t>(vq.headAddr());
    auto tail = core.ld<uint64_t>(vq.tailAddr());
    uint64_t take = (tail - head) / 2;
    for (uint64_t i = 0; i < take; ++i) {
        Addr e = vq.deqHead(core);
        if (!e)
            break;
        out->push_back(e);
    }
}

void
Worker::transferStolen(const std::vector<Addr> &tasks)
{
    // Re-home batch-stolen tasks on our own deque with the spawn
    // discipline of the variant (their producers already counted
    // them as spawned). They keep remote parents, so remember them:
    // the popper must publish its cache before the cross-core join
    // under software-centric protocols (takenRemotely).
    TaskDeque &q = rt.deque(wid);
    switch (rt.variant) {
      case SchedVariant::Baseline:
        q.lockAq(core);
        for (Addr t : tasks)
            q.enq(core, t);
        q.lockRl(core);
        break;
      case SchedVariant::Hcc:
        q.lockAq(core);
        core.cacheInvalidate();
        for (Addr t : tasks)
            q.enq(core, t);
        core.cacheFlush();
        q.lockRl(core);
        break;
      case SchedVariant::Dts:
        panic("steal-half is not defined for the DTS variant");
    }
    for (Addr t : tasks)
        remoteTasks.insert(t);
    stats.tasksStolen += tasks.size();
    traceDequeDepth(rt, wid, core.now());
}

void
Worker::noteStolen(Addr t, const std::vector<Addr> &extras, int vid)
{
    if (auto *lt = rt.lifecycle(); BT_LIFE_ON(lt)) {
        lt->onSteal(t, vid, wid, core.now());
        for (Addr e : extras)
            lt->onSteal(e, vid, wid, core.now());
    }
    trace::Tracer *tr = rt.sys.tracer();
    if (BT_TRACE_ON(tr, trace::CatFlow)) {
        tr->flow(trace::CatFlow, core.id(), core.now(), 't',
                 "task-flow", t);
        for (Addr e : extras)
            tr->flow(trace::CatFlow, core.id(), core.now(), 't',
                     "task-flow", e);
    }
}

bool
Worker::takenRemotely(Addr t)
{
    if (remoteTasks.empty())
        return false;
    return remoteTasks.erase(t) != 0;
}

void
Worker::uliHandler(CoreId thief)
{
    // Figure 3(c) lines 47-53, running on the victim core. ULI
    // reception is implicitly disabled while we are in the handler.
    SiteScope site(rt.sys.mem().checker(), wid, "Worker::uliHandler");
    TaskDeque &q = rt.deque(wid);
    Addr t = rt.dtsStealFromTail ? q.deqTail(core) : q.deqHead(core);
    if (!t) {
        // Empty deque: reply immediately through the ULI response
        // (payload 0 = no task). The common failed-probe case must
        // not touch the mailbox or flush anything.
        core.uliSendResp(thief, true, 0);
        return;
    }
    traceDequeDepth(rt, wid, core.now());
    auto &inj = core.system().injector();
    Addr parent = core.ld<uint64_t>(t + L::parentOff);
    if (parent) {
        bool skip =
            inj.armed(fault::FaultSite::RtSkipStolenMark) &&
            inj.fire(fault::FaultSite::RtSkipStolenMark, wid,
                     core.now(), parent);
        if (!skip)
            core.st<uint64_t>(parent + L::stolenOff, 1);
    }
    // Publish every value the parent produced for the stolen task
    // before the thief can observe it, then hand the task pointer
    // over through the mailbox with a synchronizing store (the
    // thief's synchronizing read is never stale).
    core.cacheFlush();
    Addr publish = t;
    if (inj.armed(fault::FaultSite::RtCorruptSteal) &&
        inj.fire(fault::FaultSite::RtCorruptSteal, wid, core.now(), t))
        publish = t ^ (1ull << 33); // points into unallocated memory
    core.amo(mem::AmoOp::Swap, rt.mailbox(thief), publish, 8,
             TimeCat::Sync);
    core.uliSendResp(thief, true, 1);
}

bool
Worker::elideStealInv()
{
    auto &inj = core.system().injector();
    return inj.armed(fault::FaultSite::RtElideStealInv) &&
           inj.fire(fault::FaultSite::RtElideStealInv, wid,
                    core.now()) != nullptr;
}

// ---------------------------------------------------------------------
// Guest entry
// ---------------------------------------------------------------------

void
Worker::guestMain(const std::function<void(Worker &)> *root)
{
    if (rt.variant == SchedVariant::Dts) {
        core.uliSetHandler(
            [this](CoreId thief, uint64_t) { uliHandler(thief); });
        core.uliEnable();
        core.work(1, TimeCat::Sync);
    }
    if (root) {
        // Worker 0 runs the root task inline.
        Addr t = newTask(nullptr);
        curTask = t;
        curProf = 0;
        lastInst = core.instCount();
        ++stats.tasksSpawned;   // balance the executed count
        ++stats.tasksExecuted;
        // The root participates in the execute-exactly-once invariant
        // like any other task, so a stray re-entry panics.
        panic_if(!rt.executedTasks.insert(t),
                 "root task %#llx executed twice (worker %d)",
                 (unsigned long long)t, wid);
        if (auto *lt = rt.lifecycle(); BT_LIFE_ON(lt))
            lt->onStart(t, wid, core.now());
        (*root)(*this);
        accrue();
        rt.profiler.onTaskDone(curProf);
        if (auto *lt = rt.lifecycle(); BT_LIFE_ON(lt))
            lt->onFinish(t, wid, core.now());
        curTask = 0;
        curProf = DagProfiler::none;
        // Publish any remaining results, then signal completion.
        core.cacheFlush();
        core.amo(mem::AmoOp::Swap, rt.doneFlag(), 1, 8);
    } else {
        topLoop();
    }
    if (rt.variant == SchedVariant::Dts)
        core.uliDisable();
}

void
Worker::topLoop()
{
    // Idle workers spin on the done flag with a synchronizing read
    // (visible under every protocol) and steal in between. With the
    // single-task steal policies, their own deque is necessarily
    // empty between top-level task executions (a stolen task only
    // returns after all of its descendants joined), so probing it
    // would be pure overhead. Batch-stealing policies break that
    // invariant — transferStolen parks extra tasks on our deque — so
    // those must drain the local deque before stealing again.
    bool drain = rt.variant != SchedVariant::Dts &&
                 rt.stealPolicy().stealsBatches();
    while (core.amoLoad(rt.doneFlag(), 8, TimeCat::Idle) == 0) {
        if (drain && popOwnTask())
            continue;
        if (!stealOnce())
            idleBackoff();
    }
}

bool
Worker::popOwnTask()
{
    TaskDeque &q = rt.deque(wid);
    Addr t = 0;
    switch (rt.variant) {
      case SchedVariant::Baseline:
        q.lockAq(core);
        t = q.deqTail(core);
        q.lockRl(core);
        break;
      case SchedVariant::Hcc:
        q.lockAq(core);
        core.cacheInvalidate();
        t = q.deqTail(core);
        core.cacheFlush();
        q.lockRl(core);
        break;
      case SchedVariant::Dts:
        return false; // private deques never hold batch-stolen work
    }
    if (!t)
        return false;
    traceDequeDepth(rt, wid, core.now());
    failStreak = 0;
    bool remote = takenRemotely(t);
    execTask(t);
    if (remote && rt.variant == SchedVariant::Hcc)
        core.cacheFlush(); // publish before the remote join
    joinShared(t);
    retire(t);
    return true;
}

} // namespace bigtiny::rt
