/**
 * @file
 * Task representation.
 *
 * A task is a 128-byte record in *simulated* memory (two cache lines),
 * so that every inter-task interaction — a thief reading the function
 * pointer and arguments, a child decrementing its parent's reference
 * count, the DTS has_stolen_child flag — flows through the simulated
 * coherence protocol exactly as the paper's Figure 3 requires.
 *
 * The function field holds a host function pointer (the moral
 * equivalent of the paper's C++ vtable dispatch); its value is data to
 * the simulator. Task frames are never recycled within a run: reusing
 * a frame address would require flushing stale dirty copies out of
 * every software-coherent L1, a hazard the paper's runtime avoids the
 * same way (task frames live on the spawning task's stack until the
 * join). See DESIGN.md.
 */

#ifndef BIGTINY_CORE_TASK_HH
#define BIGTINY_CORE_TASK_HH

#include <cstdint>

#include "common/types.hh"

namespace bigtiny::rt
{

class Worker;

/** Body of a task; @p self is the task's simulated-memory frame. */
using TaskFn = void (*)(Worker &, Addr self);

/** Field offsets within a task frame. */
struct TaskLayout
{
    static constexpr Addr fnOff = 0;      //!< TaskFn as uint64
    static constexpr Addr parentOff = 8;  //!< parent frame Addr
    static constexpr Addr rcOff = 16;     //!< reference count (int64)
    static constexpr Addr stolenOff = 24; //!< has_stolen_child flag
    static constexpr Addr profOff = 32;   //!< DAG-profiler index + 1
    static constexpr Addr argsOff = 40;   //!< inline argument slots
    static constexpr uint32_t maxArgs = 11;
    static constexpr uint32_t frameBytes = 128;
};

} // namespace bigtiny::rt

#endif // BIGTINY_CORE_TASK_HH
