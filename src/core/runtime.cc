#include "core/runtime.hh"

#include "common/log.hh"
#include "core/steal.hh"
#include "core/worker.hh"
#include "fault/failure.hh"
#include "sim/system.hh"

namespace bigtiny::rt
{

const char *
schedVariantName(SchedVariant v)
{
    switch (v) {
      case SchedVariant::Baseline:
        return "baseline";
      case SchedVariant::Hcc:
        return "hcc";
      case SchedVariant::Dts:
        return "dts";
    }
    return "?";
}

SchedVariant
Runtime::defaultVariant(const sim::SystemConfig &cfg)
{
    if (cfg.dts)
        return SchedVariant::Dts;
    if (cfg.tinyProtocol != sim::Protocol::MESI) {
        for (auto k : cfg.cores) {
            if (k == sim::CoreKind::Tiny)
                return SchedVariant::Hcc;
        }
    }
    return SchedVariant::Baseline;
}

Runtime::Runtime(sim::System &sys, SchedVariant variant)
    : variant(variant), sys(sys), cfg(sys.config())
{
    auto &arena = sys.arena();
    int n = sys.numCores();
    deques.reserve(n);
    for (int w = 0; w < n; ++w) {
        deques.push_back(
            std::make_unique<TaskDeque>(arena, cfg.dequeCapacity));
        mailboxes.push_back(arena.allocLines(lineBytes));
        rngs.emplace_back(cfg.seed * 0x9e3779b9ull + w + 1);
    }
    doneA = arena.allocLines(lineBytes);
    for (int w = 0; w < n; ++w)
        workers.push_back(
            std::make_unique<Worker>(*this, sys.core(w), w));
    policy = std::make_unique<RandomSteal>();
    if (cfg.trackLifecycle) {
        std::vector<int> cl(static_cast<size_t>(n));
        for (int w = 0; w < n; ++w)
            cl[static_cast<size_t>(w)] = cfg.clusterOf(w);
        lifeTracker = std::make_unique<trace::LifecycleTracker>(
            cfg.numClusters(), std::move(cl));
    }
    // Per-cluster steal columns for the interval sampler: attempts
    // and successes attributed to the thief's cluster. Reading worker
    // stats is host-side, so sampling cannot perturb the model.
    sys.stealSampleHook = [this](std::vector<uint64_t> &att,
                                 std::vector<uint64_t> &ok) {
        size_t ncl = static_cast<size_t>(cfg.numClusters());
        att.assign(ncl, 0);
        ok.assign(ncl, 0);
        for (int w = 0; w < numWorkers(); ++w) {
            const auto &ws = workers[static_cast<size_t>(w)]->stats;
            auto cl = static_cast<size_t>(cfg.clusterOf(w));
            att[cl] += ws.stealAttempts;
            ok[cl] += ws.stealAttempts - ws.failedSteals;
        }
    };
}

Runtime::~Runtime()
{
    // The hook captures this; the System usually outlives us.
    sys.stealSampleHook = nullptr;
}

void
Runtime::setStealPolicy(std::unique_ptr<StealPolicy> p)
{
    panic_if(!p, "setStealPolicy(nullptr)");
    panic_if(ran, "setStealPolicy after run()");
    policy = std::move(p);
}

void
Runtime::setStealPolicy(const std::string &name)
{
    setStealPolicy(makeStealPolicy(name));
}

Addr
Runtime::allocTaskFrame()
{
    Addr t = sys.arena().alloc(TaskLayout::frameBytes, lineBytes);
    if (auto *chk = sys.mem().checker())
        chk->frameAlloc(t, TaskLayout::frameBytes);
    return t;
}

void
Runtime::run(const std::function<void(Worker &)> &root)
{
    panic_if(ran, "Runtime::run may only be called once");
    ran = true;
    for (int w = 0; w < numWorkers(); ++w) {
        Worker *worker = workers[w].get();
        const auto *root_ptr = w == 0 ? &root : nullptr;
        sys.attachGuest(w, [worker, root_ptr](sim::Core &) {
            worker->guestMain(root_ptr);
        });
    }
    sys.run();

    // Post-run quiescence: task conservation must balance — every
    // spawned task executed, and every non-root task joined into its
    // parent exactly once. A mismatch means the deque, mailbox, or
    // join protocol lost or duplicated work; fail structurally rather
    // than report silently wrong statistics.
    auto total = totalStats();
    if (total.tasksSpawned != total.tasksExecuted ||
        total.tasksJoined + 1 != total.tasksExecuted ||
        executedTasks.size() != total.tasksExecuted) {
        sys.raiseFailure(
            fault::Verdict::Quiescence,
            fault::format("task conservation broken: %llu spawned, "
                          "%llu executed, %llu joined (+1 root), "
                          "%zu unique",
                          (unsigned long long)total.tasksSpawned,
                          (unsigned long long)total.tasksExecuted,
                          (unsigned long long)total.tasksJoined,
                          executedTasks.size()));
    }
}

sim::RuntimeStats
Runtime::totalStats() const
{
    sim::RuntimeStats agg;
    for (const auto &w : workers)
        agg.add(w->stats);
    return agg;
}

} // namespace bigtiny::rt
