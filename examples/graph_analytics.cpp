/**
 * @file
 * Graph analytics on a big.TINY system: builds an rMAT graph and runs
 * the BFS and connected-components kernels (the workloads the paper's
 * introduction motivates) on several coherence configurations,
 * comparing cycles, L1 hit rate, and network traffic side by side.
 *
 * Usage: graph_analytics [vertices] [edges-per-vertex]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/registry.hh"
#include "core/worker.hh"
#include "sim/system.hh"

using namespace bigtiny;

namespace
{

void
runOn(const std::string &cfg_name, const std::string &app_name,
      int64_t num_v)
{
    sim::System sys(sim::configByName(cfg_name));
    apps::AppParams params;
    params.n = num_v;
    auto app = apps::makeApp(app_name, params);
    app->setup(sys);

    rt::Runtime runtime(sys);
    runtime.run([&](rt::Worker &w) { app->runParallel(w); });
    sys.mem().drainAll();

    auto cache = sys.aggregateCacheStats(true);
    auto noc = sys.mem().noc().stats();
    std::printf("  %-16s %12llu cycles  L1 hit %5.1f%%  "
                "NoC %6.2f MB  steals %llu  %s\n",
                cfg_name.c_str(), (unsigned long long)sys.elapsed(),
                cache.hasAccesses() ? 100.0 * cache.hitRate() : 0.0,
                static_cast<double>(noc.totalBytes()) / 1e6,
                (unsigned long long)runtime.totalStats().tasksStolen,
                app->validate(sys) ? "ok" : "INVALID");
}

} // namespace

int
main(int argc, char **argv)
{
    int64_t num_v = argc > 1 ? std::atoll(argv[1]) : 8192;
    (void)argc;
    (void)argv;

    const std::vector<std::string> configs = {
        "bt-mesi", "bt-hcc-dnv", "bt-hcc-gwb", "bt-hcc-gwb-dts",
    };
    for (const std::string app : {"ligra-bfs", "ligra-cc"}) {
        std::printf("%s on %lld-vertex rMAT graph:\n", app.c_str(),
                    (long long)num_v);
        for (const auto &cfg : configs)
            runOn(cfg, app, num_v);
        std::printf("\n");
    }
    return 0;
}
