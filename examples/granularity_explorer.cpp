/**
 * @file
 * Task-granularity explorer (the methodology behind paper Figure 4
 * and Section V-D): sweeps the leaf-task grain of a parallel
 * map-style kernel on a 64-tiny-core system and prints speedup over
 * serial, logical parallelism, steal counts, and runtime overhead —
 * showing the fundamental fine-vs-coarse trade-off.
 *
 * Usage: granularity_explorer [config] [n]
 */

#include <cstdio>
#include <cstdlib>

#include "core/worker.hh"
#include "sim/system.hh"

using namespace bigtiny;

namespace
{

constexpr uint64_t workPerElem = 16;

/** The kernel: per-element compute plus a load/store pair. */
void
body(rt::Worker &w, Addr src, Addr dst, int64_t lo, int64_t hi)
{
    for (int64_t i = lo; i < hi; ++i) {
        auto v = w.ld<int64_t>(src + 8 * i);
        w.work(workPerElem);
        w.st<int64_t>(dst + 8 * i, v * 3 + 1);
    }
}

Cycle
serialRun(const std::string &config, int64_t n)
{
    sim::System sys(sim::configByName("serial-io"));
    (void)config;
    Addr src = sys.arena().allocLines(n * 8);
    Addr dst = sys.arena().allocLines(n * 8);
    sys.attachGuest(0, [&](sim::Core &c) {
        for (int64_t i = 0; i < n; ++i) {
            auto v = c.ld<int64_t>(src + 8 * i);
            c.work(workPerElem);
            c.st<int64_t>(dst + 8 * i, v * 3 + 1);
        }
    });
    sys.run();
    return sys.elapsed();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config = argc > 1 ? argv[1] : "tiny64-mesi";
    int64_t n = argc > 2 ? std::atoll(argv[2]) : 1 << 16;

    Cycle serial = serialRun(config, n);
    std::printf("%lld-element map on %s (serial: %llu cycles)\n\n",
                (long long)n, config.c_str(),
                (unsigned long long)serial);
    std::printf("%8s %10s %9s %13s %8s %10s\n", "grain", "cycles",
                "speedup", "parallelism", "steals", "tasks");

    for (int64_t grain = 8; grain <= n / 8; grain *= 4) {
        sim::System sys(sim::configByName(config));
        Addr src = sys.arena().allocLines(n * 8);
        Addr dst = sys.arena().allocLines(n * 8);
        rt::Runtime runtime(sys);
        runtime.run([&](rt::Worker &w) {
            w.parallelFor(0, n, grain,
                          [&](rt::Worker &ww, int64_t lo,
                              int64_t hi) {
                              body(ww, src, dst, lo, hi);
                          });
        });
        auto stats = runtime.totalStats();
        std::printf("%8lld %10llu %8.1fx %13.1f %8llu %10llu\n",
                    (long long)grain,
                    (unsigned long long)sys.elapsed(),
                    static_cast<double>(serial) / sys.elapsed(),
                    runtime.profiler.parallelism(),
                    (unsigned long long)stats.tasksStolen,
                    (unsigned long long)stats.tasksExecuted);
    }
    std::printf("\nToo fine: runtime overhead dominates. Too coarse: "
                "not enough parallelism for 64 cores. (Paper Section "
                "V-D / Figure 4.)\n");
    return 0;
}
