/**
 * @file
 * A guided tour of heterogeneous cache coherence semantics, using the
 * raw core API (no runtime). Demonstrates, with real simulated data:
 *
 *   1. MESI transparency: a remote write is visible immediately.
 *   2. Reader-initiated invalidation: under GPU-WB a reader sees a
 *      STALE value after a remote write-back unless it executes
 *      cache_invalidate first (Table I "who initiates invalidation").
 *   3. Dirty propagation: under GPU-WB a writer's value is invisible
 *      until cache_flush; under DeNovo the ownership registration
 *      forwards it without any flush (Table I "how is dirty data
 *      propagated").
 *
 * This is exactly the behaviour the work-stealing runtime's
 * invalidate/flush placement (paper Figure 3(b)) exists to manage.
 */

#include <cstdio>

#include "sim/system.hh"

using namespace bigtiny;

namespace
{

sim::SystemConfig
pairConfig(sim::Protocol proto)
{
    sim::SystemConfig cfg;
    cfg.name = std::string("tour-") + sim::protocolName(proto);
    cfg.meshRows = 1;
    cfg.meshCols = 8;
    cfg.cores.assign(2, sim::CoreKind::Tiny);
    cfg.tinyProtocol = proto;
    return cfg;
}

/**
 * Core 0 writes 42 then (optionally) flushes; core 1 reads a cached
 * copy, (optionally) invalidates, reads again. Returns the two values
 * core 1 observed.
 */
std::pair<uint64_t, uint64_t>
writeThenRead(sim::Protocol proto, bool flush, bool invalidate)
{
    sim::System sys(pairConfig(proto));
    Addr x = sys.arena().allocLines(8);

    sys.attachGuest(0, [&](sim::Core &c) {
        c.work(50); // let core 1 cache the initial value first
        c.st<uint64_t>(x, 42);
        if (flush)
            c.cacheFlush();
    });
    std::pair<uint64_t, uint64_t> seen{0, 0};
    sys.attachGuest(1, [&](sim::Core &c) {
        c.ld<uint64_t>(x); // warm the private cache with 0
        c.work(500);       // wait until well after the remote write
        seen.first = c.ld<uint64_t>(x);
        if (invalidate)
            c.cacheInvalidate();
        seen.second = c.ld<uint64_t>(x);
    });
    sys.run();
    return seen;
}

void
show(const char *label, std::pair<uint64_t, uint64_t> seen)
{
    std::printf("  %-44s cached-read=%2llu  after=%2llu\n", label,
                (unsigned long long)seen.first,
                (unsigned long long)seen.second);
}

} // namespace

int
main()
{
    std::printf("Heterogeneous cache coherence tour "
                "(core 0 stores 42; core 1 reads)\n\n");

    std::printf("MESI (hardware coherence, writer-initiated):\n");
    show("plain read is never stale",
         writeThenRead(sim::Protocol::MESI, false, false));

    std::printf("\nGPU-WB (software-centric, write-back):\n");
    show("no flush, no invalidate -> stale 0",
         writeThenRead(sim::Protocol::GpuWB, false, false));
    show("flush only (reader cache still stale)",
         writeThenRead(sim::Protocol::GpuWB, true, false));
    show("flush + invalidate -> fresh 42",
         writeThenRead(sim::Protocol::GpuWB, true, true));

    std::printf("\nDeNovo (ownership dirty propagation):\n");
    show("no flush needed; invalidate alone suffices",
         writeThenRead(sim::Protocol::DeNovo, false, true));
    show("but without invalidate the copy is stale",
         writeThenRead(sim::Protocol::DeNovo, false, false));

    std::printf("\nGPU-WT (write-through):\n");
    show("no flush needed; invalidate alone suffices",
         writeThenRead(sim::Protocol::GpuWT, false, true));

    std::printf("\nThis is why Figure 3(b) brackets every deque "
                "access with cache_invalidate / cache_flush, and why "
                "DTS (Figure 3(c)) pays off by making them "
                "unnecessary for local work.\n");
    return 0;
}
