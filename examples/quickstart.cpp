/**
 * @file
 * Quickstart: run a recursive fib on a big.TINY system.
 *
 * Shows the three layers of the public API:
 *   1. Configure a simulated machine (sim::SystemConfig presets).
 *   2. Bind a work-stealing runtime to it (rt::Runtime; the Figure 3
 *      scheduler variant is chosen automatically from the config).
 *   3. Write a task-parallel program against rt::Worker — here with
 *      the high-level parallelInvoke pattern, with all cross-task
 *      values in simulated memory.
 *
 * Usage: quickstart [n] [config-name]
 *   e.g. quickstart 18 bt-hcc-gwb-dts
 */

#include <cstdio>
#include <cstdlib>

#include "core/worker.hh"
#include "sim/system.hh"

using namespace bigtiny;

namespace
{

/** Parallel fib: children write into simulated-memory result slots. */
int64_t
fib(rt::Worker &w, int n)
{
    if (n < 2) {
        w.work(2);
        return n;
    }
    Addr slots = w.rt.sys.arena().alloc(16, 8);
    w.parallelInvoke(
        [&, n, slots](rt::Worker &wa) {
            wa.st<int64_t>(slots, fib(wa, n - 1));
        },
        [&, n, slots](rt::Worker &wb) {
            wb.st<int64_t>(slots + 8, fib(wb, n - 2));
        });
    return w.ld<int64_t>(slots) + w.ld<int64_t>(slots + 8);
}

} // namespace

int
main(int argc, char **argv)
{
    int n = argc > 1 ? std::atoi(argv[1]) : 16;
    std::string config = argc > 2 ? argv[2] : "bt-hcc-gwb-dts";

    sim::System sys(sim::configByName(config));
    rt::Runtime runtime(sys);

    Addr result = sys.arena().alloc(8, 8);
    runtime.run([&](rt::Worker &w) {
        w.st<int64_t>(result, fib(w, n));
    });

    sys.mem().drainAll();
    auto value = sys.mem().funcRead<int64_t>(result);
    auto stats = runtime.totalStats();

    std::printf("fib(%d) = %lld on %s (%d cores, %s runtime)\n", n,
                (long long)value, sys.config().name.c_str(),
                sys.numCores(),
                rt::schedVariantName(runtime.variant));
    std::printf("  cycles:        %llu\n",
                (unsigned long long)sys.elapsed());
    std::printf("  tasks:         %llu (%llu stolen, %llu attempts)\n",
                (unsigned long long)stats.tasksExecuted,
                (unsigned long long)stats.tasksStolen,
                (unsigned long long)stats.stealAttempts);
    std::printf("  work/span:     %llu / %llu  (parallelism %.1f)\n",
                (unsigned long long)runtime.profiler.work(),
                (unsigned long long)runtime.profiler.span(),
                runtime.profiler.parallelism());
    if (runtime.variant == rt::SchedVariant::Dts) {
        const auto &u = sys.uliNet().stats;
        std::printf("  ULI:           %llu reqs (%llu ack, %llu "
                    "nack)\n",
                    (unsigned long long)u.reqs,
                    (unsigned long long)u.acks,
                    (unsigned long long)u.nacks);
    }
    return 0;
}
